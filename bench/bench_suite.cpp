// bench_suite — the unified benchmark binary. Replaces the 15 single-figure
// mains: it enumerates BOTH registries (every scenario in
// harness::ScenarioRegistry × every variant in VariantRegistry × thread
// counts), prints the familiar per-graph text series/tables, and emits a
// machine-readable JSON report (harness::JsonReport, DESIGN.md §6.3) so the
// perf trajectory is trackable across PRs.
//
//   bench_suite --list                      enumerate scenarios and variants
//   bench_suite --record <scenario> <path> [ops]
//                                           freeze a scenario into a trace
//   bench_suite                             run the suite (env-configured)
//
// Env knobs (harness::env_config, DESIGN.md §3): DC_BENCH_MILLIS / WARMUP /
// THREADS / SCALE / SEED / FULL / VARIANTS / SCENARIOS / READS / BATCH /
// TRACE, plus suite-specific:
//   DC_BENCH_SECTIONS  comma list of sections to run (default
//                      "graphs,sweep,batchpar,sharded,stats,retries,
//                      ablation,dsu,memory,labels,ingest")
//   DC_BENCH_JSON      JSON output path (default "bench_suite.json")
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "bench_common.hpp"
#include "core/label_cache.hpp"
#include "core/sharded_dc.hpp"
#include "graph/dsu.hpp"
#include "graph/io.hpp"
#include "graph/snapshot.hpp"
#include "ingest/ingest.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace condyn;
using harness::EnvConfig;
using harness::JsonReport;
using harness::RunConfig;
using harness::RunResult;
using harness::ScenarioInfo;
using harness::SeriesReport;
using harness::TableReport;

RunConfig base_config(const EnvConfig& env) {
  RunConfig cfg;
  cfg.seed = env.seed;
  cfg.warmup_ms = env.warmup_ms;
  cfg.measure_ms = env.measure_ms;
  cfg.trace_path = env.trace_path;
  cfg.zipf_theta = env.zipf_theta;
  cfg.window_fraction = env.window_fraction;
  cfg.communities = env.communities;
  cfg.run_length = env.run_length;
  cfg.shard_skew = env.shard_skew;
  return cfg;
}

/// The scenarios this invocation can run: DC_BENCH_SCENARIOS if set,
/// otherwise every registered scenario (trace-replay only with a trace).
std::vector<const ScenarioInfo*> selected_scenarios(const EnvConfig& env) {
  std::vector<const ScenarioInfo*> out;
  if (env.scenarios.empty()) {
    for (const ScenarioInfo& s : harness::all_scenarios()) {
      if (s.caps.needs_trace && env.trace_path.empty()) {
        std::printf("# skipping scenario %s (set DC_BENCH_TRACE)\n", s.name);
        continue;
      }
      out.push_back(&s);
    }
  } else {
    for (const std::string& name : env.scenarios) {
      const ScenarioInfo* s = harness::find_scenario(name);
      if (s == nullptr) continue;
      if (s->caps.needs_trace && env.trace_path.empty()) {
        std::printf("# skipping scenario %s (set DC_BENCH_TRACE)\n", s->name);
        continue;
      }
      out.push_back(s);
    }
  }
  return out;
}

JsonReport::Record& add_sweep_record(JsonReport& json, const ScenarioInfo& s,
                                     const Graph& g, int variant_id,
                                     const RunConfig& cfg, const RunResult& r,
                                     const char* section = "sweep") {
  return json.add_record()
      .field("section", section)
      .field("scenario", s.name)
      .field("graph", g.name)
      .field("variant", bench::variant_label(variant_id))
      .field("variant_id", variant_id)
      .field("threads", static_cast<int>(cfg.threads))
      .field("read_percent", s.caps.uses_read_percent ? cfg.read_percent : 0)
      .field("batch_size",
             s.caps.batched ? static_cast<uint64_t>(cfg.batch_size)
                            : uint64_t{0})
      .field("ops_per_ms", r.ops_per_ms)
      .field("active_time_percent", r.active_time_percent)
      .field("total_ops", r.total_ops)
      .field("elapsed_ms", r.elapsed_ms)
      .field("batches", r.batches)
      .field("batch_latency_us_avg", r.batch_latency_us_avg)
      .field("batch_latency_us_max", r.batch_latency_us_max)
      // Per-op latency percentiles (tracks_latency scenarios, e.g.
      // trace-replay-dep); all zero for scenarios that don't track.
      .field("latency_samples", r.latency_samples)
      .field("latency_us_avg", r.latency_us_avg)
      .field("latency_us_p50", r.latency_us_p50)
      .field("latency_us_p90", r.latency_us_p90)
      .field("latency_us_p99", r.latency_us_p99)
      .field("latency_us_max", r.latency_us_max)
      .field("reads", r.op_counters.reads)
      .field("read_retries", r.op_counters.read_retries)
      .field("additions", r.op_counters.additions)
      .field("removals", r.op_counters.removals)
      // Per-kind throughput (Query API v2): how many of the measured ops
      // were of each vocabulary kind and at what rate — a size-query mix
      // reports its component_size/representative rates separately from
      // plain connectivity probes.
      .field("ops_add", r.ops_by_kind[0])
      .field("ops_remove", r.ops_by_kind[1])
      .field("ops_connected", r.ops_by_kind[2])
      .field("ops_component_size", r.ops_by_kind[3])
      .field("ops_representative", r.ops_by_kind[4])
      .field("add_per_ms", r.kind_per_ms(OpKind::kAdd))
      .field("remove_per_ms", r.kind_per_ms(OpKind::kRemove))
      .field("connected_per_ms", r.kind_per_ms(OpKind::kConnected))
      .field("component_size_per_ms", r.kind_per_ms(OpKind::kComponentSize))
      .field("representative_per_ms", r.kind_per_ms(OpKind::kRepresentative));
}

/// The main registry × registry enumeration: scenario × read% × graphs ×
/// variants (× batch sizes for batched scenarios) × thread counts.
void sweep_section(const EnvConfig& env, JsonReport& json) {
  const std::vector<int> variants =
      bench::variant_set(env, bench::all_variant_ids());
  const std::vector<Graph> small = bench::small_graphs(env);
  const std::vector<Graph> large = bench::large_graphs(env);

  for (const ScenarioInfo* s : selected_scenarios(env)) {
    // Trace replay ignores the preset graphs: the trace header says how many
    // vertices its ops address, so the run uses a graph (and structure)
    // sized from the trace itself.
    std::vector<Graph> trace_graph;
    if (s->caps.needs_trace) {
      const io::Trace t = io::load_trace_file(env.trace_path);
      trace_graph.emplace_back(t.num_vertices);
      trace_graph.back().name = env.trace_path;
    }
    const std::vector<int> reads = s->caps.uses_read_percent
                                       ? env.read_percents
                                       : std::vector<int>{0};
    for (int read_percent : reads) {
      std::string title = std::string("Scenario ") + s->name;
      if (s->caps.uses_read_percent)
        title += ", " + std::to_string(read_percent) + "% reads";
      SeriesReport report(title, "ops/ms", env.thread_counts);

      auto run_graph = [&](const Graph& g, bool sweep_threads) {
        report.begin_graph(bench::graph_label(g));
        for (int id : variants) {
          const std::vector<std::size_t> batches =
              s->caps.batched ? env.batch_sizes : std::vector<std::size_t>{1};
          for (std::size_t bs : batches) {
            for (unsigned threads : env.thread_counts) {
              if (!sweep_threads && threads != env.thread_counts.back())
                continue;
              RunConfig cfg = base_config(env);
              cfg.threads = threads;
              cfg.read_percent = read_percent;
              cfg.batch_size = bs;
              // Only paced scenarios get the open-loop rate: validated()
              // rejects it on batched closed-loop scenarios by design, and
              // a global DC_BENCH_RATE must not abort the whole sweep.
              if (s->caps.paced) cfg.arrival_rate = env.arrival_rate;
              auto dc = make_variant(id, g.num_vertices());
              const RunResult r = harness::run_scenario(*s, *dc, g, cfg);
              std::string row = bench::variant_label(id);
              if (s->caps.batched) row += "/b" + std::to_string(bs);
              report.add_point(row, threads, r.ops_per_ms);
              add_sweep_record(json, *s, g, id, cfg, r);
            }
          }
        }
      };

      if (s->caps.needs_trace) {
        for (const Graph& g : trace_graph) run_graph(g, true);
      } else {
        for (const Graph& g : small) run_graph(g, true);
        // Large graphs (Table 2): maximum thread count only, like the paper.
        for (const Graph& g : large) run_graph(g, false);
      }
      report.print();
    }
  }
}

/// The internally-parallel-batch head-to-head: pbd (variant 14, one worker
/// gang inside apply_batch) vs parallel-combining (the strongest externally
/// batched family) on the two contended batch scenarios, at a *pinned*
/// thread ladder {1, 8} and every DC_BENCH_BATCH_SIZES entry. Threads are
/// pinned rather than taken from DC_BENCH_THREADS so the checked-in
/// baseline's acceptance records — pbd >= parallel-combining ops/ms at 8
/// harness threads, batch >= 1024 — reproduce from the smoke env unchanged.
/// Records carry section "batchpar": bench_diff gates only "sweep" and
/// "memory", so the head-to-head is tracked without double-gating the same
/// configurations the sweep already covers.
void batchpar_section(const EnvConfig& env, JsonReport& json) {
  static constexpr const char* kScenarios[] = {"batch-zipfian",
                                               "batch-window"};
  static constexpr const char* kVariants[] = {"parallel-combining", "pbd"};
  static constexpr unsigned kThreads[] = {1, 8};
  const std::vector<Graph> small = bench::small_graphs(env);
  if (small.empty()) return;
  const Graph& g = small.front();  // one graph keeps the smoke run quick
  TableReport table("Internally parallel batches: pbd vs parallel-combining",
                    {"scenario", "reads%", "batch", "threads", "variant",
                     "ops/ms"});
  for (const char* sname : kScenarios) {
    const ScenarioInfo* s = harness::find_scenario(sname);
    if (s == nullptr) continue;
    const std::vector<int> reads = s->caps.uses_read_percent
                                       ? env.read_percents
                                       : std::vector<int>{0};
    for (int read_percent : reads) {
      for (std::size_t bs : env.batch_sizes) {
        for (unsigned threads : kThreads) {
          double ops[2] = {0, 0};
          for (int vi = 0; vi < 2; ++vi) {
            const VariantInfo* v = find_variant(kVariants[vi]);
            if (v == nullptr) continue;
            RunConfig cfg = base_config(env);
            cfg.threads = threads;
            cfg.read_percent = read_percent;
            cfg.batch_size = bs;
            auto dc = make_variant(v->id, g.num_vertices());
            const RunResult r = harness::run_scenario(*s, *dc, g, cfg);
            ops[vi] = r.ops_per_ms;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1f", r.ops_per_ms);
            table.add_row({s->name, std::to_string(read_percent),
                           std::to_string(bs), std::to_string(threads),
                           v->name, buf});
            add_sweep_record(json, *s, g, v->id, cfg, r, "batchpar");
          }
          if (ops[0] > 0 && ops[1] > 0) {
            std::printf(
                "# batchpar %s reads=%d batch=%zu threads=%u: "
                "pbd/parallel-combining = %.2fx\n",
                s->name, read_percent, bs, threads, ops[1] / ops[0]);
          }
        }
      }
    }
  }
  table.print();
}


/// Synthetic input for the sharded head-to-head: n vertices, ~m edges, with
/// exactly `cross_pct` percent of the draws crossing shard boundaries *as
/// defined by the facade's own router at `shards`* — so the cross-shard
/// fraction is controlled by construction, not estimated after the fact.
Graph cross_shard_graph(Vertex n, std::size_t m, unsigned shards,
                        int cross_pct, uint64_t seed) {
  const uint32_t mask = shards - 1;
  std::vector<std::vector<Vertex>> bucket(shards);
  for (Vertex v = 0; v < n; ++v)
    bucket[ShardedDc::route(v, mask)].push_back(v);
  Xoshiro256 rng(mix64(seed ^ 0x5ba6dedull));
  std::vector<Edge> edges;
  std::unordered_set<uint64_t> seen;
  edges.reserve(m);
  // Bounded attempts: tiny buckets (or cross_pct ~100 at shards=1, where
  // crossing is impossible) must not spin forever.
  for (std::size_t tries = 0; edges.size() < m && tries < 20 * m; ++tries) {
    uint32_t a = static_cast<uint32_t>(rng.next_below(shards));
    uint32_t b = a;
    if (shards > 1 &&
        rng.next_below(100) < static_cast<uint64_t>(cross_pct)) {
      while (b == a) b = static_cast<uint32_t>(rng.next_below(shards));
    }
    if (bucket[a].empty() || bucket[b].empty()) continue;
    const Vertex u = bucket[a][rng.next_below(bucket[a].size())];
    const Vertex v = bucket[b][rng.next_below(bucket[b].size())];
    if (u == v) continue;
    const Edge e(u, v);
    if (seen.insert(e.key()).second) edges.push_back(e);
  }
  Graph g(n, std::move(edges));
  char name[48];
  std::snprintf(name, sizeof name, "xshard-s%u-c%d@%u", shards, cross_pct, n);
  g.name = name;
  return g;
}

/// §10 head-to-head: the sharded facade vs its flat inner flagship on the
/// two locality scenarios, at S in {1,4,16} x cross-shard edge fraction
/// {1,10,50}% (S=1 has no boundary, one cross=0 row as the facade-overhead
/// baseline). Threads pinned to {1,8} like batchpar so the checked-in
/// acceptance records — sharded<full> >= full at S=16, 8 threads, <=10%
/// cross — reproduce from the smoke env unchanged. DC_SHARDS is set per
/// row before construction (the facade and the work-imbalance generator
/// both read it), and restored after.
void sharded_section(const EnvConfig& env, JsonReport& json) {
  static constexpr const char* kScenarios[] = {"component-local",
                                               "work-imbalance"};
  static constexpr const char* kVariants[] = {"full", "sharded<full>"};
  static constexpr unsigned kThreads[] = {1, 8};
  static constexpr unsigned kShards[] = {1, 4, 16};
  static constexpr int kCross[] = {1, 10, 50};
  const Vertex n = std::max<Vertex>(
      1024, static_cast<Vertex>(32768 * (env.full ? 1.0 : env.scale)));
  const std::size_t m = static_cast<std::size_t>(n) * 3;
  const int read_percent = env.read_percents.front();
  const char* prev = std::getenv("DC_SHARDS");
  const std::string saved = prev != nullptr ? prev : "";
  TableReport table("Sharded facade vs flat (DESIGN.md \u00a710)",
                    {"scenario", "graph", "threads", "variant", "ops/ms",
                     "cross-upd"});
  for (unsigned shards : kShards) {
    ::setenv("DC_SHARDS", std::to_string(shards).c_str(), 1);
    for (int cross : kCross) {
      if (shards == 1 && cross != kCross[0]) continue;  // no boundary at S=1
      const Graph g = cross_shard_graph(n, m, shards,
                                        shards == 1 ? 0 : cross, env.seed);
      for (const char* sname : kScenarios) {
        const ScenarioInfo* s = harness::find_scenario(sname);
        if (s == nullptr) continue;
        for (unsigned threads : kThreads) {
          double ops[2] = {0, 0};
          for (int vi = 0; vi < 2; ++vi) {
            const VariantInfo* v = find_variant(kVariants[vi]);
            if (v == nullptr) continue;
            RunConfig cfg = base_config(env);
            cfg.threads = threads;
            cfg.read_percent = read_percent;
            auto dc = make_variant(v->id, g.num_vertices());
            const RunResult r = harness::run_scenario(*s, *dc, g, cfg);
            ops[vi] = r.ops_per_ms;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1f", r.ops_per_ms);
            table.add_row({s->name, g.name, std::to_string(threads),
                           v->name, buf,
                           std::to_string(r.op_counters.shard_cross_updates)});
            add_sweep_record(json, *s, g, v->id, cfg, r, "sharded")
                .field("shards", static_cast<int>(shards))
                .field("cross_pct",
                       shards == 1 ? 0 : cross)
                .field("shard_cross_updates",
                       r.op_counters.shard_cross_updates)
                .field("shard_boundary_queries",
                       r.op_counters.shard_boundary_queries)
                .field("shard_index_rebuilds",
                       r.op_counters.shard_index_rebuilds);
          }
          if (ops[0] > 0 && ops[1] > 0) {
            std::printf("# sharded %s %s threads=%u: sharded<full>/full = "
                        "%.2fx\n",
                        s->name, g.name.c_str(), threads, ops[1] / ops[0]);
          }
        }
      }
    }
  }
  if (prev != nullptr) {
    ::setenv("DC_SHARDS", saved.c_str(), 1);
  } else {
    ::unsetenv("DC_SHARDS");
  }
  table.print();
}

/// Tables 1-2: the benchmark graph inventory — |V|, |E|, degree and
/// component structure of every stand-in (checks DESIGN.md §2's claims).
void graphs_section(const EnvConfig& env, JsonReport& json) {
  TableReport table("Benchmark graphs",
                    {"graph", "|V|", "|E|", "avg deg", "components",
                     "largest %", "max deg"});
  auto add = [&](const Graph& g) {
    const ComponentInfo cc = connected_components(g);
    std::vector<std::size_t> deg(g.num_vertices(), 0);
    for (const Edge& e : g.edges()) {
      ++deg[e.u];
      ++deg[e.v];
    }
    const std::size_t dmax =
        deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
    table.add_row(
        {g.name, std::to_string(g.num_vertices()),
         std::to_string(g.num_edges()), TableReport::num(g.density()),
         std::to_string(cc.num_components),
         TableReport::pct(100.0 * cc.largest_component / g.num_vertices()),
         std::to_string(dmax)});
    json.add_record()
        .field("section", "graphs")
        .field("graph", g.name)
        .field("vertices", static_cast<uint64_t>(g.num_vertices()))
        .field("edges", static_cast<uint64_t>(g.num_edges()))
        .field("avg_degree", g.density())
        .field("components", static_cast<uint64_t>(cc.num_components))
        .field("max_degree", static_cast<uint64_t>(dmax));
  };
  for (const Graph& g : bench::small_graphs(env)) add(g);
  for (const Graph& g : bench::large_graphs(env)) add(g);
  table.print();
}

/// Tables 3-4: sequential-workload statistics — non-spanning operation rates
/// in the random mix and the incremental/decremental scenarios.
void stats_section(const EnvConfig& env, JsonReport& json) {
  TableReport table("Scenario statistics (sequential workload)",
                    {"graph", "scenario", "% non-span. adds",
                     "% non-span. removes", "largest component, %"});
  for (const Graph& g : bench::small_graphs(env)) {
    auto row = [&](const char* scenario, const RunResult& r, double largest) {
      const auto& c = r.op_counters;
      const double add_pct =
          c.additions ? 100.0 * c.nonspanning_additions / c.additions : 0;
      const double rem_pct =
          c.removals ? 100.0 * c.nonspanning_removals / c.removals : 0;
      table.add_row({g.name, scenario, TableReport::pct(add_pct),
                     TableReport::pct(rem_pct),
                     largest >= 0 ? TableReport::pct(largest) : "-"});
      json.add_record()
          .field("section", "stats")
          .field("scenario", scenario)
          .field("graph", g.name)
          .field("nonspanning_add_percent", add_pct)
          .field("nonspanning_remove_percent", rem_pct);
    };

    RunConfig cfg = base_config(env);
    cfg.threads = 1;
    cfg.read_percent = 0;  // updates only: add/remove 50/50
    cfg.warmup_ms = 0;
    auto rnd = make_variant(9, g.num_vertices());
    const ComponentInfo cc = connected_components(
        g.num_vertices(), harness::random_half(g, env.seed));
    row("random", harness::run_random(*rnd, g, cfg),
        100.0 * cc.largest_component / g.num_vertices());

    auto inc = make_variant(9, g.num_vertices());
    row("incremental", harness::run_incremental(*inc, g, cfg), -1);

    auto dec = make_variant(9, g.num_vertices());
    row("decremental", harness::run_decremental(*dec, g, cfg), -1);
  }
  table.print();
}

/// §5.3 "Lock-Free Reads": share of lock-free connectivity checks that
/// succeed on their first attempt (the paper reports >99.99%).
void retries_section(const EnvConfig& env, JsonReport& json) {
  TableReport table("Lock-free read retries, random scenario, max threads",
                    {"graph", "read %", "reads", "retries", "first-try %"});
  const unsigned threads = env.thread_counts.back();
  for (const Graph& g : bench::small_graphs(env)) {
    for (int read_pct : env.read_percents) {
      auto dc = make_variant(9, g.num_vertices());
      RunConfig cfg = base_config(env);
      cfg.threads = threads;
      cfg.read_percent = read_pct;
      const RunResult r = harness::run_random(*dc, g, cfg);
      const auto& c = r.op_counters;
      const double first_try =
          c.reads ? 100.0 * (1.0 - static_cast<double>(c.read_retries) /
                                       static_cast<double>(c.reads))
                  : 100.0;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", first_try);
      table.add_row({g.name, std::to_string(read_pct),
                     std::to_string(c.reads), std::to_string(c.read_retries),
                     buf});
      json.add_record()
          .field("section", "retries")
          .field("graph", g.name)
          .field("read_percent", read_pct)
          .field("reads", c.reads)
          .field("read_retries", c.read_retries)
          .field("first_try_percent", first_try);
    }
  }
  table.print();
}

/// §5.2 "Sampling" ablation: the Iyer-et-al. replacement-sampling fast path
/// on vs off in the replacement-heavy decremental scenario.
void ablation_section(const EnvConfig& env, JsonReport& json) {
  TableReport table("Replacement sampling ablation, decremental scenario",
                    {"graph", "variant", "threads", "ops/ms (sampling)",
                     "ops/ms (off)", "speedup"});
  const unsigned threads = env.thread_counts.back();
  for (const Graph& g : bench::small_graphs(env)) {
    for (int id : bench::variant_set(env, {1, 9})) {
      double with_s = 0, without_s = 0;
      for (bool sampling : {true, false}) {
        auto dc = make_variant(id, g.num_vertices(), sampling);
        RunConfig cfg = base_config(env);
        cfg.threads = threads;
        const RunResult r = harness::run_decremental(*dc, g, cfg);
        (sampling ? with_s : without_s) = r.ops_per_ms;
      }
      table.add_row({g.name, bench::variant_label(id),
                     std::to_string(threads), TableReport::num(with_s),
                     TableReport::num(without_s),
                     TableReport::num(without_s > 0 ? with_s / without_s : 0)});
      json.add_record()
          .field("section", "ablation")
          .field("graph", g.name)
          .field("variant", bench::variant_label(id))
          .field("threads", static_cast<int>(threads))
          .field("ops_per_ms_sampling", with_s)
          .field("ops_per_ms_no_sampling", without_s);
    }
  }
  table.print();
}

/// DESIGN.md §7.4: allocation cost of the update path. Runs the random
/// scenario (update-heavy) per variant at max threads and reports the
/// memory-subsystem counters the workers accumulated during the measured
/// window: allocator round trips per operation, the pool reuse share, and
/// the process-wide resident footprint of pools + map segments. With
/// DC_POOL=0 every pool allocation degrades to new/delete, which reproduces
/// the seed's allocation behaviour — the pooled/passthrough ratio is the
/// "allocator calls per update op" win the memory overhaul claims.
void memory_section(const EnvConfig& env, JsonReport& json) {
  TableReport table(
      std::string("Memory subsystem, random scenario (pooling ") +
          (pool_stats::pooling_enabled() ? "on" : "OFF — DC_POOL=0") + ")",
      {"graph", "variant", "threads", "allocs/1k ops", "pool hit %",
       "recycled/1k ops", "alloc KiB/1k ops", "resident +MiB"});
  const unsigned threads = env.thread_counts.back();
  for (const Graph& g : bench::small_graphs(env)) {
    for (int id : bench::variant_set(env, {1, 9})) {
      auto dc = make_variant(id, g.num_vertices());
      RunConfig cfg = base_config(env);
      cfg.threads = threads;
      cfg.read_percent = 0;  // updates only: the allocation-heavy mix
      // resident_bytes() is a process-wide gauge and pool slabs persist
      // across runs (earlier rows' slabs get *reused* by later rows), so
      // each row reports its own growth, not the cumulative footprint.
      const uint64_t resident_before = pool_stats::resident_bytes();
      const RunResult r = harness::run_random(*dc, g, cfg);
      const uint64_t resident_after = pool_stats::resident_bytes();
      const uint64_t resident_delta =
          resident_after > resident_before ? resident_after - resident_before
                                           : 0;
      const auto& m = r.mem_counters;
      const double ops = r.total_ops > 0 ? static_cast<double>(r.total_ops) : 1;
      const double pool_served =
          static_cast<double>(m.pool_fresh + m.pool_reused);
      const double hit_pct =
          pool_served > 0 ? 100.0 * m.pool_reused / pool_served : 0;
      const double resident_mib =
          static_cast<double>(resident_delta) / (1024.0 * 1024.0);
      table.add_row(
          {g.name, bench::variant_label(id), std::to_string(threads),
           TableReport::num(1000.0 * m.allocator_calls / ops),
           TableReport::pct(hit_pct),
           TableReport::num(1000.0 * m.pool_recycled / ops),
           TableReport::num(1000.0 * m.bytes_allocated / 1024.0 / ops),
           TableReport::num(resident_mib)});
      json.add_record()
          .field("section", "memory")
          .field("scenario", "random")
          .field("graph", g.name)
          .field("variant", bench::variant_label(id))
          .field("variant_id", id)
          .field("threads", static_cast<int>(threads))
          .field("pooling", pool_stats::pooling_enabled() ? 1 : 0)
          .field("total_ops", r.total_ops)
          .field("ops_per_ms", r.ops_per_ms)
          .field("allocator_calls", m.allocator_calls)
          .field("allocator_frees", m.allocator_frees)
          .field("bytes_allocated", m.bytes_allocated)
          .field("allocs_per_op",
                 static_cast<double>(m.allocator_calls) / ops)
          .field("pool_fresh", m.pool_fresh)
          .field("pool_reused", m.pool_reused)
          .field("pool_recycled", m.pool_recycled)
          .field("pool_hit_percent", hit_pct)
          .field("resident_bytes", resident_delta)
          .field("resident_bytes_total", resident_after);
    }
  }
  table.print();
}

/// Tentpole measurement (DESIGN.md §8): the label cache on/off × read share
/// × thread count on the component-local scenario — the cache's target
/// workload (read-mostly traffic with community locality) — over two
/// deliberately opposed graphs: the fragmented road network, where uniform
/// churn keeps invalidating whatever the readers just repaired (the honest
/// worst case), and the community-structured graph, where per-component
/// invalidation leaves the other communities' labels hot. The interesting
/// output is the *crossover*: at 50% reads the bracket overhead shows up as
/// pure cost; by 99-100% reads the O(1) hit path should win by multiples on
/// the community graph (the acceptance bar is >= 3x at 99% reads). The off
/// rows use the same binary with the process-wide kill switch, so both
/// sides pay identical code layout — only the hit path toggles.
void labels_section(const EnvConfig& env, JsonReport& json) {
  if (!LabelCache::env_enabled()) {
    std::printf("# labels section skipped (DC_LABEL_CACHE=0)\n");
    return;
  }
  std::vector<int> cache_ids;
  for (const VariantInfo& v : all_variants())
    if (v.caps.label_cache) cache_ids.push_back(v.id);
  std::vector<int> variants;
  for (int id : bench::variant_set(env, cache_ids)) {
    const VariantInfo* v = find_variant(id);
    if (v != nullptr && v->caps.label_cache) variants.push_back(id);
  }
  if (variants.empty()) {
    std::printf("# labels section skipped (no cache-capable variant in "
                "DC_BENCH_VARIANTS)\n");
    return;
  }
  const ScenarioInfo* s = harness::find_scenario("component-local");
  const std::vector<Graph> small = bench::small_graphs(env);
  std::vector<const Graph*> graphs{&small.front()};
  for (const Graph& g : small) {
    if (g.name.find("components") != std::string::npos) {
      graphs.push_back(&g);
      break;
    }
  }
  for (int read_percent : {50, 90, 99, 100}) {
    SeriesReport report("Label cache crossover, component-local scenario, " +
                            std::to_string(read_percent) + "% reads",
                        "ops/ms", env.thread_counts);
    for (const Graph* g : graphs) {
      report.begin_graph(bench::graph_label(*g));
      for (int id : variants) {
        for (int cache_on : {1, 0}) {
          LabelCache::set_globally_enabled(cache_on != 0);
          for (unsigned threads : env.thread_counts) {
            RunConfig cfg = base_config(env);
            cfg.threads = threads;
            cfg.read_percent = read_percent;
            auto dc = make_variant(id, g->num_vertices());
            const RunResult r = harness::run_scenario(*s, *dc, *g, cfg);
            report.add_point(std::string(bench::variant_label(id)) +
                                 (cache_on != 0 ? "/cache" : "/walk"),
                             threads, r.ops_per_ms);
            json.add_record()
                .field("section", "labels")
                .field("scenario", s->name)
                .field("graph", g->name)
                .field("variant", bench::variant_label(id))
                .field("variant_id", id)
                .field("threads", static_cast<int>(threads))
                .field("read_percent", read_percent)
                .field("label_cache", cache_on)
                .field("ops_per_ms", r.ops_per_ms)
                .field("total_ops", r.total_ops)
                .field("reads", r.op_counters.reads)
                .field("read_retries", r.op_counters.read_retries)
                .field("label_hits", r.op_counters.label_hits)
                .field("label_misses", r.op_counters.label_misses)
                .field("label_publishes", r.op_counters.label_publishes)
                .field("connected_per_ms", r.kind_per_ms(OpKind::kConnected));
          }
        }
      }
    }
    LabelCache::set_globally_enabled(true);
    report.print();
  }
}

/// Percentile of a sorted sample vector, in microseconds from nanoseconds.
double sojourn_us_at(const std::vector<uint32_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ns.size() - 1));
  return sorted_ns[idx] / 1000.0;
}

/// One timed multi-producer run through an IngestService: `threads`
/// producers each pull ops from their own stream and submit until the
/// wall-clock window closes, then the service drains. Returns acked ops/ms.
struct IngestRun {
  double ops_per_ms = 0;
  double elapsed_ms = 0;
  ingest::IngestStats stats;
  std::vector<uint32_t> sojourn_ns;  ///< sorted; record_sojourn runs only
};

IngestRun run_ingest(DynamicConnectivity& dc, const Graph& g,
                     const EnvConfig& env, unsigned threads, int read_percent,
                     ingest::IngestOptions opts, double rate) {
  ingest::IngestService svc(dc, std::move(opts));
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      harness::PacedStream stream(
          std::make_unique<harness::RandomOpStream>(
              g, read_percent, mix64(env.seed ^ (0x16e57ull + t))),
          rate > 0 ? rate / threads : 0);
      Op op;
      while (!stop.load(std::memory_order_relaxed) && stream.next(op))
        svc.submit(op);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(env.measure_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& p : producers) p.join();
  svc.drain();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  IngestRun r;
  r.stats = svc.stats();
  r.elapsed_ms = elapsed_ms;
  r.ops_per_ms =
      elapsed_ms > 0 ? static_cast<double>(r.stats.acked) / elapsed_ms : 0;
  r.sojourn_ns = svc.take_sojourn_ns();
  std::sort(r.sojourn_ns.begin(), r.sojourn_ns.end());
  svc.stop();
  return r;
}

/// The streaming ingest section (DESIGN.md §11): four records that pin the
/// subsystem's acceptance claims.
///   closed-loop    the harness batch-random scenario at batch 256 — the
///                  pre-ingest way to amortize synchronization, and the
///                  throughput bar group commit must clear;
///   group-commit   the same mix submitted by `threads` producers through
///                  the MPSC ring + one applier draining <= 256 per pass;
///   firehose       group commit again, but producers paced open-loop at
///                  DC_BENCH_RATE (default: half the measured group-commit
///                  capacity, so the queue is stable and the tail is
///                  meaningful) — reports sojourn p50/p99/p999;
///   recovery       a journaled run with a mid-stream snapshot, then a cold
///                  recover_files into a fresh structure, timed and verified
///                  against a DSU built from the recovered live-edge set.
void ingest_section(const EnvConfig& env, JsonReport& json) {
  const std::vector<Graph> small = bench::small_graphs(env);
  if (small.empty()) return;
  const Graph& g = small.front();
  const unsigned threads = env.thread_counts.back();
  const int read_percent = env.read_percents.front();
  constexpr std::size_t kBatch = 256;
  const char* variant = "full";
  TableReport table("Streaming ingest (DESIGN.md §11)",
                    {"mode", "threads", "rate/s", "ops/ms", "p50 us",
                     "p99 us", "p999 us"});
  auto add_record = [&](const char* mode, double rate, double ops_per_ms,
                        const std::vector<uint32_t>& soj) {
    char p50[32], p99[32], p999[32];
    std::snprintf(p50, sizeof p50, "%.1f", sojourn_us_at(soj, 0.50));
    std::snprintf(p99, sizeof p99, "%.1f", sojourn_us_at(soj, 0.99));
    std::snprintf(p999, sizeof p999, "%.1f", sojourn_us_at(soj, 0.999));
    char ops[32];
    std::snprintf(ops, sizeof ops, "%.1f", ops_per_ms);
    table.add_row({mode, std::to_string(threads),
                   std::to_string(static_cast<uint64_t>(rate)), ops,
                   soj.empty() ? "-" : p50, soj.empty() ? "-" : p99,
                   soj.empty() ? "-" : p999});
    return &json.add_record()
                .field("section", "ingest")
                .field("mode", mode)
                .field("scenario", "batch-random")
                .field("graph", g.name)
                .field("variant", variant)
                .field("threads", static_cast<int>(threads))
                .field("read_percent", read_percent)
                .field("batch_size", static_cast<uint64_t>(kBatch))
                .field("rate", rate)
                .field("ops_per_ms", ops_per_ms)
                .field("sojourn_us_p50", sojourn_us_at(soj, 0.50))
                .field("sojourn_us_p99", sojourn_us_at(soj, 0.99))
                .field("sojourn_us_p999", sojourn_us_at(soj, 0.999));
  };

  // 1. Closed-loop batch baseline: the registry scenario, same mix.
  double closed_ops = 0;
  if (const ScenarioInfo* s = harness::find_scenario("batch-random")) {
    RunConfig cfg = base_config(env);
    cfg.threads = threads;
    cfg.read_percent = read_percent;
    cfg.batch_size = kBatch;
    auto dc = make_variant(variant, g.num_vertices());
    const RunResult r = harness::run_scenario(*s, *dc, g, cfg);
    closed_ops = r.ops_per_ms;
    add_record("closed-loop", 0, closed_ops, {});
  }

  // 2. Group commit at full producer speed.
  ingest::IngestOptions base;
  base.max_batch = kBatch;
  double group_ops = 0;
  {
    auto dc = make_variant(variant, g.num_vertices());
    const IngestRun r =
        run_ingest(*dc, g, env, threads, read_percent, base, /*rate=*/0);
    group_ops = r.ops_per_ms;
    add_record("group-commit", 0, group_ops, {});
  }
  if (closed_ops > 0 && group_ops > 0)
    std::printf("# ingest group-commit/closed-loop(b%zu) = %.2fx\n", kBatch,
                group_ops / closed_ops);

  // 3. Open-loop firehose at DC_BENCH_RATE (default: half of measured
  // group-commit capacity — a stable queue whose tail means something).
  {
    const double rate = env.arrival_rate > 0 ? env.arrival_rate
                                             : 0.5 * group_ops * 1000.0;
    ingest::IngestOptions opts = base;
    opts.record_sojourn = true;
    auto dc = make_variant(variant, g.num_vertices());
    const IngestRun r =
        run_ingest(*dc, g, env, threads, read_percent, opts, rate);
    add_record("firehose", rate, r.ops_per_ms, r.sojourn_ns);
  }

  // 4. Durability + recovery: journaled run, snapshot at the half-way
  // point, then a timed cold recovery verified against the live-edge DSU.
  {
    const std::string journal = "bench_ingest_journal.dcjl";
    const std::string snapshot = "bench_ingest_snapshot.dcsn";
    std::remove(journal.c_str());
    std::remove(snapshot.c_str());
    ingest::IngestOptions opts = base;
    opts.journal_path = journal;
    double journaled_ops = 0;
    {
      auto dc = make_variant(variant, g.num_vertices());
      ingest::IngestService svc(*dc, opts);
      std::atomic<bool> stop{false};
      std::vector<std::thread> producers;
      for (unsigned t = 0; t < threads; ++t) {
        producers.emplace_back([&, t] {
          harness::RandomOpStream stream(g, read_percent,
                                         mix64(env.seed ^ (0xf1a5ull + t)));
          Op op;
          while (!stop.load(std::memory_order_relaxed) && stream.next(op))
            svc.submit(op);
        });
      }
      const auto t0 = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(env.measure_ms / 2));
      svc.snapshot_to(snapshot);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(env.measure_ms - env.measure_ms / 2));
      stop.store(true, std::memory_order_relaxed);
      for (auto& p : producers) p.join();
      svc.drain();
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      journaled_ops = elapsed_ms > 0 ? svc.stats().acked / elapsed_ms : 0;
      svc.stop();
    }
    auto recovered = make_variant(variant, g.num_vertices());
    const auto r0 = std::chrono::steady_clock::now();
    const ingest::RecoveryResult rec =
        ingest::recover_files(*recovered, snapshot, journal);
    const double recovery_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - r0)
            .count();
    // Verify: the recovered structure must agree with a DSU over the
    // recovered live-edge set on every vertex's representative.
    Dsu oracle(g.num_vertices());
    for (const Edge& e : rec.live_edges) oracle.unite(e.u, e.v);
    bool verified = true;
    for (Vertex v = 0; v < g.num_vertices() && verified; ++v)
      verified = recovered->representative(v) == oracle.representative(v);
    add_record("recovery", 0, journaled_ops, {})
        ->field("recovery_ms", recovery_ms)
        .field("journal_records", rec.journal_records)
        .field("replayed", rec.replayed)
        .field("snapshot_edges", rec.snapshot_edges)
        .field("live_edges", static_cast<uint64_t>(rec.live_edges.size()))
        .field("verified", verified ? 1 : 0);
    std::printf("# ingest recovery: %llu snapshot edges + %llu/%llu journal "
                "records in %.2f ms (%s)\n",
                static_cast<unsigned long long>(rec.snapshot_edges),
                static_cast<unsigned long long>(rec.replayed),
                static_cast<unsigned long long>(rec.journal_records),
                recovery_ms, verified ? "verified" : "MISMATCH");
    std::remove(journal.c_str());
    std::remove(snapshot.c_str());
    std::remove((snapshot + ".tmp").c_str());
  }
  table.print();
}

/// The cross-machine calibration record (scripts/bench_diff.py): one fixed
/// single-thread coarse run on a fixed graph with fixed windows, deliberately
/// independent of every DC_BENCH_* knob, emitted into every artifact. Two
/// artifacts' sweep throughputs become comparable across machines by scaling
/// with the ratio of their calibration ops_per_ms (ROADMAP: "teach bench_diff
/// to normalize against a calibration record").
void calibration_record(JsonReport& json) {
  Graph g = gen::erdos_renyi(4096, 16384, /*seed=*/7);
  g.name = "calibration-er-4096";
  RunConfig cfg;
  cfg.threads = 1;
  cfg.read_percent = 80;
  cfg.seed = 7;
  cfg.warmup_ms = 20;
  cfg.measure_ms = 100;
  // By name, not id: the record's label and the measured variant must never
  // drift apart if the registry is ever reordered.
  auto dc = make_variant("coarse", g.num_vertices());
  const RunResult r = harness::run_random(*dc, g, cfg);
  std::printf("# calibration (coarse, 1 thread, fixed config): %.1f ops/ms\n",
              r.ops_per_ms);
  json.add_record()
      .field("section", "calibration")
      .field("graph", g.name)
      .field("variant", "coarse")
      .field("threads", 1)
      .field("ops_per_ms", r.ops_per_ms)
      .field("total_ops", r.total_ops);
}

/// Minimal DynamicConnectivity facade over union-find: additions and
/// queries only; removals abort (never issued by the incremental driver).
class DsuDc final : public DynamicConnectivity {
 public:
  explicit DsuDc(Vertex n) : dsu_(n) {}

  bool add_edge(Vertex u, Vertex v) override {
    std::lock_guard<SpinLock> lk(mu_);
    return dsu_.unite(u, v);
  }
  bool remove_edge(Vertex, Vertex) override {
    std::abort();  // incremental-only structure
  }
  bool connected(Vertex u, Vertex v) override {
    std::lock_guard<SpinLock> lk(mu_);
    return dsu_.connected(u, v);
  }
  Vertex num_vertices() const override { return dsu_.num_vertices(); }
  std::string name() const override { return "dsu (incremental-only)"; }

 private:
  Dsu dsu_;
  SpinLock mu_;
};

/// Related-work ablation: what the fully-dynamic structures pay for
/// supporting deletions, vs a lock-protected union-find that cannot delete.
void dsu_section(const EnvConfig& env, JsonReport& json) {
  SeriesReport report("Incremental scenario: DSU baseline vs fully-dynamic",
                      "ops/ms", env.thread_counts);
  for (const Graph& g : bench::small_graphs(env)) {
    report.begin_graph(bench::graph_label(g));
    for (unsigned threads : env.thread_counts) {
      RunConfig cfg = base_config(env);
      cfg.threads = threads;
      DsuDc dsu(g.num_vertices());
      const RunResult r = harness::run_incremental(dsu, g, cfg);
      report.add_point("dsu", threads, r.ops_per_ms);
      json.add_record()
          .field("section", "dsu")
          .field("graph", g.name)
          .field("variant", "dsu")
          .field("threads", static_cast<int>(threads))
          .field("ops_per_ms", r.ops_per_ms);
      for (int id : bench::variant_set(env, {1, 9})) {
        auto dc = make_variant(id, g.num_vertices());
        const RunResult rv = harness::run_incremental(*dc, g, cfg);
        report.add_point(bench::variant_label(id), threads, rv.ops_per_ms);
        json.add_record()
            .field("section", "dsu")
            .field("graph", g.name)
            .field("variant", bench::variant_label(id))
            .field("threads", static_cast<int>(threads))
            .field("ops_per_ms", rv.ops_per_ms);
      }
    }
  }
  report.print();
}

void list_registries() {
  std::printf("Scenarios (%zu registered):\n",
              harness::all_scenarios().size());
  for (const ScenarioInfo& s : harness::all_scenarios()) {
    std::printf("  %2d  %-18s [%s%s%s%s]  %s\n", s.id, s.name,
                s.caps.finite ? "finite" : "timed",
                s.caps.uses_read_percent ? ",reads" : "",
                s.caps.batched ? ",batched" : "",
                s.caps.needs_trace ? ",trace" : "", s.description);
  }
  std::printf("\nVariants (%zu registered):\n", all_variants().size());
  for (const VariantInfo& v : all_variants()) {
    std::printf("  %2d  %-18s [%s%s%s%s%s]  %s\n", v.id, v.name,
                v.caps.native_batch ? "batch" : "per-op",
                v.caps.lock_free_reads ? ",nbreads" : "",
                v.caps.atomic_batch ? ",atomic" : "",
                v.caps.combining ? ",combining" : "",
                v.caps.sized_components && v.caps.stable_representative
                    ? ",values"
                    : "",
                v.description);
  }
}

int record_command(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: bench_suite --record <scenario> <path> [ops]\n");
    return 2;
  }
  const ScenarioInfo* s = harness::find_scenario(argv[2]);
  if (s == nullptr) {
    std::fprintf(stderr, "unknown scenario \"%s\" (see --list)\n", argv[2]);
    return 2;
  }
  const std::size_t max_ops =
      argc > 4 ? static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10))
               : 100000;
  const EnvConfig env = harness::env_config();
  const Graph g = bench::small_graphs(env).front();
  RunConfig cfg = base_config(env);
  cfg.threads = 1;
  cfg.read_percent = env.read_percents.front();
  harness::record_trace_file(*s, g, cfg, max_ops, argv[3]);
  const io::Trace t = io::load_trace_file(argv[3]);
  std::printf("recorded %zu ops of scenario %s on %s (|V|=%u) -> %s\n",
              t.ops.size(), s->name, g.name.c_str(), t.num_vertices, argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
    list_registries();
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--record") == 0) {
    return record_command(argc, argv);
  }
  if (argc > 1) {
    std::fprintf(stderr,
                 "usage: bench_suite [--list | --record <scenario> <path> "
                 "[ops]]\n(the run itself is configured via DC_BENCH_* env "
                 "vars, see DESIGN.md §3)\n");
    return std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
  }

  bench::print_env_banner("bench_suite: unified scenario x variant sweep");
  const EnvConfig env = harness::env_config();

  JsonReport json("bench_suite");
  json.meta("seed", env.seed);
  json.meta("scale", env.full ? 1.0 : env.scale);
  json.meta("measure_ms", static_cast<uint64_t>(env.measure_ms));
  json.meta("warmup_ms", static_cast<uint64_t>(env.warmup_ms));
  json.meta("full", static_cast<uint64_t>(env.full ? 1 : 0));

  // Unconditional (not a DC_BENCH_SECTIONS member): every artifact must be
  // normalizable by bench_diff, whatever sections it was run with.
  calibration_record(json);

  for (const std::string& section :
       harness::env_list("DC_BENCH_SECTIONS",
                         "graphs,sweep,batchpar,sharded,stats,retries,"
                         "ablation,dsu,memory,labels,ingest")) {
    if (section == "graphs") {
      graphs_section(env, json);
    } else if (section == "sweep") {
      sweep_section(env, json);
    } else if (section == "batchpar") {
      batchpar_section(env, json);
    } else if (section == "sharded") {
      sharded_section(env, json);
    } else if (section == "stats") {
      stats_section(env, json);
    } else if (section == "retries") {
      retries_section(env, json);
    } else if (section == "ablation") {
      ablation_section(env, json);
    } else if (section == "dsu") {
      dsu_section(env, json);
    } else if (section == "memory") {
      memory_section(env, json);
    } else if (section == "labels") {
      labels_section(env, json);
    } else if (section == "ingest") {
      ingest_section(env, json);
    } else {
      std::printf("# unknown section \"%s\" skipped\n", section.c_str());
    }
  }

  const char* json_env = std::getenv("DC_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env ? json_env : "bench_suite.json";
  json.save_file(json_path);
  std::printf("# %zu JSON records -> %s\n", json.size(), json_path.c_str());
  return 0;
}
