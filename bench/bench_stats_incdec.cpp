// E10 / Table 4: incremental / decremental statistics on the sequential
// workload — the share of operations that touch only non-spanning edges.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Table 4: incremental/decremental statistics");
  const auto env = harness::env_config();
  harness::TableReport table(
      "Incremental / decremental statistics (sequential workload)",
      {"graph", "% non-spanning additions", "% non-spanning removals"});

  for (const Graph& g : bench::small_graphs(env)) {
    harness::RunConfig cfg;
    cfg.threads = 1;
    cfg.seed = env.seed;

    auto inc = make_variant(9, g.num_vertices());
    const auto ri = harness::run_incremental(*inc, g, cfg);
    const auto& ci = ri.op_counters;
    const double add_pct =
        ci.additions ? 100.0 * ci.nonspanning_additions / ci.additions : 0;

    auto dec = make_variant(9, g.num_vertices());
    const auto rd = harness::run_decremental(*dec, g, cfg);
    const auto& cd = rd.op_counters;
    const double rem_pct =
        cd.removals ? 100.0 * cd.nonspanning_removals / cd.removals : 0;

    table.add_row({g.name, harness::TableReport::pct(add_pct),
                   harness::TableReport::pct(rem_pct)});
  }
  table.print();
  return 0;
}
