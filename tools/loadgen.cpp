// loadgen: multi-process open-loop load generator for condyn_server
// (DESIGN.md §12.5). Replays a DCTR trace's op stream against the wire::
// protocol at a *target* arrival rate — frames are stamped with their
// scheduled send time and latency is measured from that schedule, not from
// the actual write, so sender backlog shows up as latency (the open-loop
// discipline: the offered load does not slow down because the server is
// slow). Emits the harness JSON schema (section "serve") with achieved vs
// offered rate, shed counts, and p50/p99/p999 end-to-end latency.
//
//   loadgen --port P [--host 127.0.0.1] [--trace t.dctr]
//           [--rate OPS_PER_SEC] [--connections 8] [--processes 1]
//           [--duration 10] [--batch 8] [--poisson] [--seed 42]
//           [--json out.json]
//
//   loadgen --make-trace t.dctr [--vertices 4096] [--ops 200000] [--seed 42]
//       freeze the harness "random" scenario into a DCTR file (a
//       self-contained way for CI to produce a replayable trace).
//
// Without --trace, the op stream is synthesized in-memory the same way
// --make-trace would (reported as trace="synthetic"). With --processes > 1
// the connections are split across forked children, each with its own
// sender/receiver threads; a pipe carries counts + latency samples back.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "server/client.hpp"

namespace {

using namespace condyn;

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 7421;
  std::string trace_path;
  std::string make_trace;   // utility mode: write a trace and exit
  double rate = 10000;      // aggregate target ops/sec
  unsigned connections = 8;
  unsigned processes = 1;
  double duration_s = 10;
  unsigned batch = 8;       // ops per frame
  bool poisson = false;     // exponential inter-frame gaps (default: paced)
  uint64_t seed = 42;
  Vertex vertices = 4096;   // synthetic trace size
  uint64_t ops = 200000;    // synthetic trace length
  std::string json_path;
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "loadgen: %s\n", msg);
  std::fprintf(stderr,
               "usage: loadgen --port P [--host H] [--trace t.dctr] "
               "[--rate R] [--connections C] [--processes N] [--duration S] "
               "[--batch B] [--poisson] [--seed S] [--json out.json]\n"
               "       loadgen --make-trace t.dctr [--vertices N] [--ops M]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (++i >= argc) usage(("missing value for " + flag).c_str());
      return argv[i];
    };
    if (flag == "--host") a.host = next();
    else if (flag == "--port") a.port = static_cast<uint16_t>(std::stoul(next()));
    else if (flag == "--trace") a.trace_path = next();
    else if (flag == "--make-trace") a.make_trace = next();
    else if (flag == "--rate") a.rate = std::stod(next());
    else if (flag == "--connections") a.connections = static_cast<unsigned>(std::stoul(next()));
    else if (flag == "--processes") a.processes = static_cast<unsigned>(std::stoul(next()));
    else if (flag == "--duration") a.duration_s = std::stod(next());
    else if (flag == "--batch") a.batch = static_cast<unsigned>(std::stoul(next()));
    else if (flag == "--poisson") a.poisson = true;
    else if (flag == "--seed") a.seed = std::stoull(next());
    else if (flag == "--vertices") a.vertices = static_cast<Vertex>(std::stoul(next()));
    else if (flag == "--ops") a.ops = std::stoull(next());
    else if (flag == "--json") a.json_path = next();
    else usage(("unknown flag " + flag).c_str());
  }
  if (a.connections == 0 || a.processes == 0 || a.batch == 0)
    usage("--connections/--processes/--batch must be positive");
  if (a.processes > a.connections) usage("--processes exceeds --connections");
  if (a.rate <= 0) usage("--rate must be positive");
  return a;
}

/// The harness "random" scenario frozen into a trace — the same op stream
/// --make-trace writes and the synthetic fallback replays.
io::Trace synthesize_trace(const Args& a) {
  const harness::ScenarioInfo* s = harness::find_scenario("random");
  if (s == nullptr) usage("scenario 'random' not registered");
  const Graph g = gen::random_components(a.vertices, a.vertices * 4, 4, a.seed);
  harness::RunConfig cfg;
  cfg.threads = 1;
  cfg.seed = a.seed;
  return harness::record_trace(*s, g, cfg, a.ops);
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What one connection's sender/receiver pair produces.
struct ConnResult {
  uint64_t frames_sent = 0;
  uint64_t ops_sent = 0;
  uint64_t ops_acked = 0;
  uint64_t ops_shed = 0;
  uint64_t ops_failed = 0;
  std::vector<uint64_t> latency_ns;  // one sample per answered frame
};

/// One connection: a sender thread paces frames by the open-loop schedule
/// while the receiver thread matches responses in order and measures from
/// the *scheduled* send time.
ConnResult run_connection(const Args& a, const io::Trace& trace,
                          unsigned global_index, unsigned total_conns) {
  ConnResult r;
  server::BlockingClient cli;
  cli.connect(a.host, a.port);

  // Connection g replays ops [g*batch, g*batch+batch), stride total*batch —
  // a round-robin split of the one trace across every connection of every
  // process, wrapping when the trace runs out.
  const uint64_t stride = static_cast<uint64_t>(total_conns) * a.batch;
  uint64_t cursor = static_cast<uint64_t>(global_index) * a.batch;

  // Per-connection frame interval holding the aggregate rate: each frame
  // carries `batch` ops and `total_conns` connections send concurrently.
  const double frame_interval_ns =
      1e9 * static_cast<double>(a.batch) * total_conns / a.rate;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int64_t> scheduled;  // send schedule, consumed by the receiver
  bool done = false;

  std::thread receiver([&] {
    for (;;) {
      int64_t t0;
      {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return !scheduled.empty() || done; });
        if (scheduled.empty()) return;
        t0 = scheduled.front();
        scheduled.pop_front();
      }
      try {
        const wire::Results res = cli.recv_results();
        const int64_t dt = now_ns() - t0;
        if (res.status == wire::Status::kOk) {
          r.ops_acked += res.values.size();
          r.latency_ns.push_back(static_cast<uint64_t>(std::max<int64_t>(dt, 0)));
        } else if (res.status == wire::Status::kOverloaded) {
          r.ops_shed += a.batch;
        } else {
          r.ops_failed += a.batch;
        }
      } catch (const std::exception&) {
        r.ops_failed += a.batch;
        return;  // connection is gone; sender will notice on write
      }
    }
  });

  std::mt19937_64 rng(a.seed ^ (0x9e3779b97f4a7c15ull * (global_index + 1)));
  std::exponential_distribution<double> exp_gap(1.0 / frame_interval_ns);
  const int64_t start = now_ns();
  const int64_t deadline = start + static_cast<int64_t>(a.duration_s * 1e9);
  double next_send = static_cast<double>(start);
  std::vector<Op> frame(a.batch);

  while (static_cast<int64_t>(next_send) < deadline) {
    const auto scheduled_at = static_cast<int64_t>(next_send);
    // Open-loop: sleep only until the *schedule* says send, never because
    // the server is slow. A late sender sends immediately and the lateness
    // lands in the measured latency.
    const int64_t now = now_ns();
    if (scheduled_at > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(scheduled_at - now));
    }
    for (unsigned i = 0; i < a.batch; ++i) {
      frame[i] = trace.ops[(cursor + i) % trace.ops.size()];
    }
    cursor += stride;
    {
      std::lock_guard lk(mu);
      scheduled.push_back(scheduled_at);
    }
    cv.notify_one();
    try {
      cli.send_ops(frame);
    } catch (const std::exception&) {
      break;  // server closed on us; stop offering
    }
    r.frames_sent += 1;
    r.ops_sent += a.batch;
    next_send += a.poisson ? exp_gap(rng) : frame_interval_ns;
  }
  {
    std::lock_guard lk(mu);
    done = true;
  }
  cv.notify_one();
  receiver.join();
  return r;
}

/// One process's share: its connections run concurrently, results merged.
ConnResult run_process(const Args& a, const io::Trace& trace,
                       unsigned first_conn, unsigned count,
                       unsigned total_conns) {
  std::vector<ConnResult> results(count);
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads.emplace_back([&, i] {
      try {
        results[i] = run_connection(a, trace, first_conn + i, total_conns);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loadgen: connection %u: %s\n", first_conn + i,
                     e.what());
      }
    });
  }
  for (auto& t : threads) t.join();
  ConnResult merged;
  for (ConnResult& r : results) {
    merged.frames_sent += r.frames_sent;
    merged.ops_sent += r.ops_sent;
    merged.ops_acked += r.ops_acked;
    merged.ops_shed += r.ops_shed;
    merged.ops_failed += r.ops_failed;
    merged.latency_ns.insert(merged.latency_ns.end(), r.latency_ns.begin(),
                             r.latency_ns.end());
  }
  return merged;
}

void write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = write(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      std::_Exit(3);
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool read_all(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

double pct_us(const std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(sorted_ns.size())),
                       static_cast<double>(sorted_ns.size())) -
      1);
  return static_cast<double>(sorted_ns[idx]) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse_args(argc, argv);

  if (!a.make_trace.empty()) {
    const io::Trace t = synthesize_trace(a);
    io::save_trace_file(t, a.make_trace, io::preferred_format(t));
    std::printf("loadgen: wrote %zu ops over %u vertices to %s\n",
                t.ops.size(), t.num_vertices, a.make_trace.c_str());
    return 0;
  }

  const io::Trace trace =
      a.trace_path.empty() ? synthesize_trace(a)
                           : io::load_trace_file(a.trace_path);
  if (trace.ops.empty()) usage("trace has no ops");

  // Fork the children *before* any threads exist; each sends back
  // 5 x u64 counters + sample count + the raw latency samples.
  const unsigned per_child = a.connections / a.processes;
  const unsigned remainder = a.connections % a.processes;
  std::vector<int> pipes;
  std::vector<pid_t> pids;
  unsigned next_conn = 0;
  const int64_t bench_start = now_ns();
  for (unsigned p = 0; p < a.processes; ++p) {
    const unsigned count = per_child + (p < remainder ? 1 : 0);
    const unsigned first = next_conn;
    next_conn += count;
    int fds[2];
    if (pipe(fds) < 0) {
      std::perror("loadgen: pipe");
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("loadgen: fork");
      return 1;
    }
    if (pid == 0) {
      close(fds[0]);
      const ConnResult r =
          run_process(a, trace, first, count, a.connections);
      const uint64_t header[6] = {r.frames_sent, r.ops_sent,     r.ops_acked,
                                  r.ops_shed,    r.ops_failed,
                                  r.latency_ns.size()};
      write_all(fds[1], header, sizeof header);
      write_all(fds[1], r.latency_ns.data(),
                r.latency_ns.size() * sizeof(uint64_t));
      close(fds[1]);
      std::_Exit(0);
    }
    close(fds[1]);
    pipes.push_back(fds[0]);
    pids.push_back(pid);
  }

  ConnResult total;
  bool child_failed = false;
  for (std::size_t p = 0; p < pids.size(); ++p) {
    uint64_t header[6];
    if (read_all(pipes[p], header, sizeof header)) {
      total.frames_sent += header[0];
      total.ops_sent += header[1];
      total.ops_acked += header[2];
      total.ops_shed += header[3];
      total.ops_failed += header[4];
      std::vector<uint64_t> samples(header[5]);
      if (read_all(pipes[p], samples.data(),
                   samples.size() * sizeof(uint64_t))) {
        total.latency_ns.insert(total.latency_ns.end(), samples.begin(),
                                samples.end());
      } else {
        child_failed = true;
      }
    } else {
      child_failed = true;
    }
    close(pipes[p]);
    int status = 0;
    waitpid(pids[p], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) child_failed = true;
  }
  const double elapsed_s =
      static_cast<double>(now_ns() - bench_start) / 1e9;

  std::sort(total.latency_ns.begin(), total.latency_ns.end());
  const double achieved =
      elapsed_s > 0 ? static_cast<double>(total.ops_acked) / elapsed_s : 0;

  // Final server-side view, from a fresh probe connection.
  wire::StatusReport probe{};
  bool probed = false;
  try {
    server::BlockingClient cli;
    cli.connect(a.host, a.port);
    probe = cli.status();
    probed = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: status probe failed: %s\n", e.what());
  }

  harness::JsonReport json("condyn-serve");
  json.meta("host", a.host);
  json.meta("trace", a.trace_path.empty() ? std::string("synthetic")
                                          : a.trace_path);
  json.meta("arrival", a.poisson ? "poisson" : "paced");
  auto& rec = json.add_record();
  rec.field("section", "serve")
      .field("offered_rate", a.rate)
      .field("achieved_rate", achieved)
      .field("connections", static_cast<uint64_t>(a.connections))
      .field("processes", static_cast<uint64_t>(a.processes))
      .field("batch", static_cast<uint64_t>(a.batch))
      .field("duration_s", elapsed_s)
      .field("frames_sent", total.frames_sent)
      .field("ops_sent", total.ops_sent)
      .field("ops_acked", total.ops_acked)
      .field("ops_shed", total.ops_shed)
      .field("ops_failed", total.ops_failed)
      .field("latency_us_p50", pct_us(total.latency_ns, 0.50))
      .field("latency_us_p99", pct_us(total.latency_ns, 0.99))
      .field("latency_us_p999", pct_us(total.latency_ns, 0.999));
  if (probed) {
    rec.field("server_acked", probe.acked)
        .field("server_queue_depth", probe.queue_depth)
        .field("server_journal_errors", probe.journal_errors)
        .field("server_batches", probe.batches);
  }
  const std::string text = harness::json_report(json);
  std::fputs(text.c_str(), stdout);
  std::fputc('\n', stdout);
  if (!a.json_path.empty()) json.save_file(a.json_path);

  if (child_failed) {
    std::fprintf(stderr, "loadgen: a child process failed\n");
    return 1;
  }
  return 0;
}
