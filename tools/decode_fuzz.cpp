// decode_fuzz — robustness fuzzing for the three binary decoders: DCTR
// traces (io::load_trace), DCSN snapshots (io::load_snapshot) and DCJL
// journals (io::load_journal). Two build modes:
//
//   default           a self-contained seeded mutation loop: build small
//                     valid corpora in memory, mutate them (truncate, flip,
//                     insert, delete, garbage prefix, pure noise) and feed
//                     every decoder. `decode_fuzz [seconds] [seed]` runs a
//                     wall-clock budget (default 60s); CI points sanitizer
//                     builds at it so UB surfaces as a job failure.
//   CONDYN_LIBFUZZER  exports LLVMFuzzerTestOneInput instead of main;
//                     configure with -DCONDYN_LIBFUZZER=ON (clang only) and
//                     run `decode_fuzz -max_total_time=60 corpus/`.
//
// The contract under test (DESIGN.md §6.5, §11.3): arbitrary bytes must
// produce either a successful decode or a std::exception — never UB, a
// crash, or an unbounded allocation. Successful decodes additionally
// round-trip: re-encoding the decoded value and decoding again must
// reproduce it bit-for-bit (a mismatch is reported as a logic bug and the
// offending input is written to fuzz_crash_<n>.bin for triage).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#ifndef CONDYN_LIBFUZZER
#include <csignal>
#include <ctime>
#include <fcntl.h>
#include <unistd.h>
#endif

#include "graph/io.hpp"
#include "graph/snapshot.hpp"
#include "graph/wire.hpp"

namespace {

using namespace condyn;

/// Universe the wire ops decoder is checked against: vertex-range rejection
/// needs a concrete num_vertices, and the server always supplies one.
constexpr Vertex kWireUniverse = 1u << 20;

/// Thrown by the round-trip checks; anything else escaping a decoder is
/// equally a finding, but this one carries a human-readable diagnosis.
struct RoundTripError : std::logic_error {
  using std::logic_error::logic_error;
};

std::atomic<uint64_t> g_trace_ok{0}, g_snapshot_ok{0}, g_journal_ok{0},
    g_wire_ok{0};

void check_trace(const std::string& buf) {
  io::Trace t;
  try {
    std::istringstream in(buf);
    t = io::load_trace(in);
  } catch (const std::exception&) {
    return;  // graceful rejection is the expected outcome
  }
  g_trace_ok.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream out;
  io::save_trace(t, out, io::preferred_format(t));
  std::istringstream back(out.str());
  if (io::load_trace(back) != t)
    throw RoundTripError("trace decode -> encode -> decode mismatch");
}

void check_snapshot(const std::string& buf) {
  io::Snapshot s;
  try {
    std::istringstream in(buf);
    s = io::load_snapshot(in);
  } catch (const std::exception&) {
    return;
  }
  g_snapshot_ok.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream out;
  io::save_snapshot(s, out);
  std::istringstream back(out.str());
  if (!(io::load_snapshot(back) == s))
    throw RoundTripError("snapshot decode -> encode -> decode mismatch");
}

void check_journal(const std::string& buf) {
  io::JournalData j;
  try {
    std::istringstream in(buf);
    j = io::load_journal(in);
  } catch (const std::exception&) {
    return;
  }
  g_journal_ok.fetch_add(1, std::memory_order_relaxed);
  // The reader is tolerant past the header, so a decode that kept N records
  // must keep exactly those N when they are re-encoded without the torn
  // tail.
  std::ostringstream out;
  io::write_journal_header(out, j.num_vertices);
  for (const io::JournalRecord& r : j.records)
    io::write_journal_record(out, r.seq, r.op);
  std::istringstream back(out.str());
  const io::JournalData again = io::load_journal(back);
  if (again.num_vertices != j.num_vertices || again.records != j.records ||
      again.truncated_tail)
    throw RoundTripError("journal decode -> encode -> decode mismatch");
}

void check_wire(const std::string& buf) {
  std::size_t frames = 0;
  try {
    frames = wire::decode_any(
        std::span(reinterpret_cast<const uint8_t*>(buf.data()), buf.size()),
        kWireUniverse);
  } catch (const std::runtime_error&) {
    return;  // strict rejection is the expected outcome
  }
  // decode_any's internal round-trip checks throw std::logic_error, which
  // deliberately escapes past the catch above and is reported as a finding.
  g_wire_ok.fetch_add(frames, std::memory_order_relaxed);
}

void one_input(const uint8_t* data, std::size_t size) {
  const std::string buf(reinterpret_cast<const char*>(data), size);
  check_trace(buf);
  check_snapshot(buf);
  check_journal(buf);
  check_wire(buf);
}

}  // namespace

#ifdef CONDYN_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  one_input(data, size);  // round-trip failures throw -> libFuzzer crash
  return 0;
}

#else  // seeded mutation loop fallback ---------------------------------------

namespace {

/// The input being fuzzed right now, exposed so the signal handler can dump
/// it if a decoder takes the process down (SIGSEGV and friends can't be
/// caught as exceptions; without this the reproducer would be lost).
std::string g_current;

void crash_handler(int sig) {
  const int fd = ::open("fuzz_crash_signal.bin", O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd >= 0) {
    // write(2) is async-signal-safe; the return value is deliberately
    // ignored — there is nothing more to do on a failed write here.
    ssize_t ignored = ::write(fd, g_current.data(), g_current.size());
    (void)ignored;
    ::close(fd);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

std::string encode_trace(uint32_t version, bool with_values) {
  io::Trace t;
  t.num_vertices = 32;
  for (Vertex v = 1; v < 16; ++v) t.ops.push_back(Op::add(0, v));
  t.ops.push_back(Op::remove(0, 3));
  t.ops.push_back(Op::connected(1, 2));
  if (with_values) {
    t.ops.push_back(Op::component_size(4));
    t.ops.push_back(Op::representative(5));
  }
  std::ostringstream out;
  io::save_trace(t, out, static_cast<io::TraceFormat>(version));
  return out.str();
}

std::string encode_snapshot() {
  std::vector<Edge> live;
  for (Vertex v = 1; v < 12; ++v) live.push_back(Edge{0, v});
  std::ostringstream out;
  io::save_snapshot(io::make_snapshot(57, 32, std::move(live)), out);
  return out.str();
}

/// A multi-frame wire buffer: one ops frame covering every kind, a results
/// frame, a status probe and its response — decode_any walks them all.
std::string encode_wire() {
  std::vector<uint8_t> out;
  std::vector<Op> ops;
  for (Vertex v = 1; v < 12; ++v) ops.push_back(Op::add(0, v));
  ops.push_back(Op::remove(0, 5));
  ops.push_back(Op::connected(1, 2));
  ops.push_back(Op::component_size(3));
  ops.push_back(Op::representative(4));
  wire::encode_ops_frame(ops, out);
  const std::vector<uint64_t> values = {1, 0, 17, 3, 0};
  wire::encode_results_frame(wire::Status::kOk, values, out);
  wire::encode_status_request(out);
  wire::StatusReport st;
  st.num_vertices = kWireUniverse;
  st.queue_depth = 3;
  st.submitted = 1000;
  st.acked = 997;
  st.batches = 12;
  wire::encode_status_response(st, out);
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

std::string encode_journal() {
  std::ostringstream out;
  io::write_journal_header(out, 32);
  uint64_t seq = 0;
  for (Vertex v = 1; v < 12; ++v)
    io::write_journal_record(out, ++seq, Op::add(0, v));
  io::write_journal_record(out, ++seq, Op::remove(0, 5));
  return out.str();
}

std::string mutate(const std::string& base, std::mt19937_64& rng) {
  std::string s = base;
  auto rnd = [&](std::size_t n) { return n ? rng() % n : 0; };
  const int passes = 1 + static_cast<int>(rnd(4));
  for (int i = 0; i < passes; ++i) {
    switch (rnd(6)) {
      case 0:  // truncate — torn tails are the headline journal case
        s.resize(rnd(s.size() + 1));
        break;
      case 1:  // flip bits of one byte
        if (!s.empty()) s[rnd(s.size())] ^= static_cast<char>(1 + rnd(255));
        break;
      case 2: {  // insert a few random bytes
        std::string ins(1 + rnd(8), '\0');
        for (char& c : ins) c = static_cast<char>(rng());
        s.insert(rnd(s.size() + 1), ins);
        break;
      }
      case 3: {  // delete a small range
        if (s.empty()) break;
        const std::size_t at = rnd(s.size());
        s.erase(at, 1 + rnd(std::min<std::size_t>(8, s.size() - at)));
        break;
      }
      case 4:  // garbage prefix — exercises the magic/version checks
        s.insert(0, 1, static_cast<char>(rng()));
        break;
      default: {  // replace wholesale with noise
        s.assign(4 + rnd(96), '\0');
        for (char& c : s) c = static_cast<char>(rng());
        break;
      }
    }
  }
  return s;
}

int fuzz_main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 60.0;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  std::mt19937_64 rng(seed);

  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    ::signal(sig, crash_handler);

  std::vector<std::string> corpus = {
      encode_trace(io::kTraceVersionV1, false),
      encode_trace(io::kTraceVersionV2, false),
      encode_trace(io::kTraceVersionV3, true),
      encode_snapshot(),
      encode_journal(),
      encode_wire(),
  };
  // The unmutated corpus must decode: a harness that only ever feeds its
  // decoders garbage fuzzes the error paths and nothing else.
  for (const std::string& c : corpus)
    one_input(reinterpret_cast<const uint8_t*>(c.data()), c.size());
  if (g_trace_ok.load() < 3 || g_snapshot_ok.load() < 1 ||
      g_journal_ok.load() < 1 || g_wire_ok.load() < 4) {
    std::fprintf(stderr, "decode_fuzz: seed corpus failed to decode\n");
    return 1;
  }

  const std::clock_t budget =
      static_cast<std::clock_t>(seconds * CLOCKS_PER_SEC);
  const std::clock_t start = std::clock();
  uint64_t iterations = 0;
  int crashes = 0;
  while (std::clock() - start < budget) {
    g_current = mutate(corpus[rng() % corpus.size()], rng);
    const uint64_t ok_before = g_trace_ok.load() + g_snapshot_ok.load() +
                               g_journal_ok.load() + g_wire_ok.load();
    try {
      one_input(reinterpret_cast<const uint8_t*>(g_current.data()),
                g_current.size());
      // Mutants that still decode are the interesting frontier: append them
      // (bounded) so the walk compounds edits instead of always restarting
      // one edit away from a pristine seed. Never overwrite the seeds —
      // replacing them with rejected garbage degenerates the corpus until
      // only the error paths are exercised.
      const uint64_t ok_after = g_trace_ok.load() + g_snapshot_ok.load() +
                                g_journal_ok.load() + g_wire_ok.load();
      if (ok_after > ok_before && corpus.size() < 64 &&
          g_current.size() < (1u << 16))
        corpus.push_back(g_current);
    } catch (const std::exception& e) {
      char name[64];
      std::snprintf(name, sizeof name, "fuzz_crash_%d.bin", crashes++);
      if (std::FILE* f = std::fopen(name, "wb")) {
        std::fwrite(g_current.data(), 1, g_current.size(), f);
        std::fclose(f);
      }
      std::fprintf(stderr, "decode_fuzz: %s (input saved to %s)\n", e.what(),
                   name);
    }
    ++iterations;
  }

  std::printf(
      "decode_fuzz: %llu inputs in %.1fs (seed %llu): trace ok %llu, "
      "snapshot ok %llu, journal ok %llu, wire frames ok %llu, findings %d\n",
      static_cast<unsigned long long>(iterations),
      static_cast<double>(std::clock() - start) / CLOCKS_PER_SEC,
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(g_trace_ok.load()),
      static_cast<unsigned long long>(g_snapshot_ok.load()),
      static_cast<unsigned long long>(g_journal_ok.load()),
      static_cast<unsigned long long>(g_wire_ok.load()), crashes);
  return crashes == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return fuzz_main(argc, argv); }

#endif  // CONDYN_LIBFUZZER
