// trace_convert — SNAP-style temporal edge lists in, DCTR traces out
// (DESIGN.md §6.5). The importer behind the trace ecosystem: public graph
// streams become replayable workloads for every scenario/variant pair.
//
//   trace_convert convert <in.txt> <out.dctr> [options]
//       --dedup        drop re-adds of a live edge
//       --window N     cap live edges at N; the oldest is removed first
//                      (turns an insert-only stream fully dynamic)
//       --queries N    insert a connected() probe every N update ops
//       --seed S       probe endpoint RNG seed (default 42)
//       --v1           write the uncompressed v1 format instead of v2
//   trace_convert info <trace.dctr>
//       print header fields, op mix and bytes/op (strict decode: a corrupt
//       trace fails here instead of at replay time)
//   trace_convert recompress <in.dctr> <out.dctr> [--v1]
//       re-encode a trace between versions; ops are preserved exactly
//
// Subcommands also accept the --info / --recompress spellings.
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/io.hpp"

namespace {

using namespace condyn;

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_convert convert <in.txt> <out.dctr>\n"
      "         [--dedup] [--window N] [--queries N] [--seed S] [--v1]\n"
      "       trace_convert info <trace.dctr>\n"
      "       trace_convert recompress <in.dctr> <out.dctr> [--v1]\n");
  return 2;
}

bool flag(std::vector<std::string>& args, const char* name) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == name) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

bool value_flag(std::vector<std::string>& args, const char* name,
                uint64_t* out) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == name) {
      if (it + 1 == args.end()) throw std::runtime_error(
          std::string(name) + " needs a value");
      *out = std::stoull(*(it + 1));
      args.erase(it, it + 2);
      return true;
    }
  }
  return false;
}

void print_info(const std::string& path) {
  const io::TraceFileInfo info = io::trace_info_file(path);
  std::printf("trace: %s\n", path.c_str());
  std::printf("  version:      %u%s\n", info.version,
              info.version == io::kTraceVersionV2 ? " (delta+varint)" : "");
  if (info.version == io::kTraceVersionV2)
    std::printf("  flags:        0x%x\n", info.flags);
  std::printf("  vertices:     %u\n", info.num_vertices);
  std::printf("  ops:          %llu (adds %llu, removes %llu, queries %llu)\n",
              static_cast<unsigned long long>(info.ops),
              static_cast<unsigned long long>(info.adds),
              static_cast<unsigned long long>(info.removes),
              static_cast<unsigned long long>(info.queries));
  std::printf("  file bytes:   %llu (header %llu, payload %llu)\n",
              static_cast<unsigned long long>(info.file_bytes),
              static_cast<unsigned long long>(info.header_bytes),
              static_cast<unsigned long long>(info.payload_bytes));
  std::printf("  bytes/op:     %.2f\n", info.bytes_per_op);
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  while (cmd.size() >= 2 && cmd[0] == '-') cmd.erase(0, 1);  // --info == info
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "info") {
    if (args.size() != 1) return usage();
    print_info(args[0]);
    return 0;
  }

  if (cmd == "recompress") {
    const bool v1 = flag(args, "--v1");
    if (args.size() != 2) return usage();
    const io::Trace t = io::load_trace_file(args[0]);
    io::save_trace_file(t, args[1],
                        v1 ? io::TraceFormat::kV1 : io::TraceFormat::kV2);
    std::printf("recompressed %zu ops: %s -> %s (v%u)\n", t.ops.size(),
                args[0].c_str(), args[1].c_str(),
                v1 ? io::kTraceVersionV1 : io::kTraceVersionV2);
    print_info(args[1]);
    return 0;
  }

  if (cmd == "convert") {
    io::ConvertOptions opts;
    const bool v1 = flag(args, "--v1");
    opts.dedup = flag(args, "--dedup");
    uint64_t window = 0, queries = 0;
    value_flag(args, "--window", &window);
    value_flag(args, "--queries", &queries);
    value_flag(args, "--seed", &opts.seed);
    opts.window = static_cast<std::size_t>(window);
    opts.query_every = static_cast<uint32_t>(queries);
    if (args.size() != 2) return usage();
    const auto events = io::load_temporal_snap_file(args[0]);
    if (events.empty())
      throw std::runtime_error(args[0] + " holds no temporal edges");
    const io::Trace t = io::temporal_to_trace(events, opts);
    io::save_trace_file(t, args[1],
                        v1 ? io::TraceFormat::kV1 : io::TraceFormat::kV2);
    std::printf("converted %zu events -> %zu ops, |V|=%u: %s\n",
                events.size(), t.ops.size(), t.num_vertices, args[1].c_str());
    print_info(args[1]);
    return 0;
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_convert: %s\n", e.what());
    return 1;
  }
}
