// trace_convert — SNAP-style temporal edge lists in, DCTR traces out
// (DESIGN.md §6.5). The importer behind the trace ecosystem: public graph
// streams become replayable workloads for every scenario/variant pair.
//
//   trace_convert convert <in.txt> <out.dctr> [options]
//       --dedup        drop re-adds of a live edge
//       --window N     cap live edges at N; the oldest is removed first
//                      (turns an insert-only stream fully dynamic)
//       --queries N    insert a connected() probe every N update ops
//       --reads P      synthesize a read-heavy mix: interleave query probes
//                      until reads are P% of the ops (the paper's 80/99%
//                      mixes from pure update streams)
//       --size-queries with --reads: probes rotate connected /
//                      component_size / representative (emits DCTR v3)
//       --seed S       probe endpoint RNG seed (default 42)
//       --v1           write the uncompressed v1 format instead of v2/v3
//   trace_convert info <trace.dctr>
//       print header fields, op mix and bytes/op (strict decode: a corrupt
//       trace fails here instead of at replay time)
//   trace_convert recompress <in.dctr> <out.dctr> [--v1] [--reads P]
//                                                 [--size-queries] [--seed S]
//       re-encode a trace between versions; without --reads ops are
//       preserved exactly, with it reads are synthesized as in convert
//   trace_convert snapshot <snap.dcsn> [out.dctr]
//       inspect a DCSN ingest snapshot (DESIGN.md §11.3): applied_seq,
//       vertex count and live-edge count; with out.dctr, extract the
//       embedded live-edge trace as a standalone DCTR file — a crash
//       snapshot becomes a prefill/replay workload for any scenario
//
// Output format: v1 with --v1 (rejected if the trace holds value queries),
// otherwise v2 — upgraded automatically to v3 when the trace contains
// component_size / representative ops (io::preferred_format).
// Subcommands also accept the --info / --recompress spellings.
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "graph/snapshot.hpp"

namespace {

using namespace condyn;

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_convert convert <in.txt> <out.dctr>\n"
      "         [--dedup] [--window N] [--queries N] [--reads P]\n"
      "         [--size-queries] [--seed S] [--v1]\n"
      "       trace_convert info <trace.dctr>\n"
      "       trace_convert recompress <in.dctr> <out.dctr> [--v1]\n"
      "         [--reads P] [--size-queries] [--seed S]\n"
      "       trace_convert snapshot <snap.dcsn> [out.dctr]\n");
  return 2;
}

bool flag(std::vector<std::string>& args, const char* name) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == name) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

bool value_flag(std::vector<std::string>& args, const char* name,
                uint64_t* out) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == name) {
      if (it + 1 == args.end()) throw std::runtime_error(
          std::string(name) + " needs a value");
      *out = std::stoull(*(it + 1));
      args.erase(it, it + 2);
      return true;
    }
  }
  return false;
}

void print_info(const std::string& path) {
  const io::TraceFileInfo info = io::trace_info_file(path);
  std::printf("trace: %s\n", path.c_str());
  std::printf("  version:      %u%s\n", info.version,
              info.version >= io::kTraceVersionV2 ? " (delta+varint)" : "");
  if (info.version >= io::kTraceVersionV2)
    std::printf("  flags:        0x%x\n", info.flags);
  std::printf("  vertices:     %u\n", info.num_vertices);
  std::printf("  ops:          %llu (adds %llu, removes %llu, queries %llu, "
              "size %llu, rep %llu)\n",
              static_cast<unsigned long long>(info.ops),
              static_cast<unsigned long long>(info.adds),
              static_cast<unsigned long long>(info.removes),
              static_cast<unsigned long long>(info.queries),
              static_cast<unsigned long long>(info.size_queries),
              static_cast<unsigned long long>(info.rep_queries));
  std::printf("  file bytes:   %llu (header %llu, payload %llu)\n",
              static_cast<unsigned long long>(info.file_bytes),
              static_cast<unsigned long long>(info.header_bytes),
              static_cast<unsigned long long>(info.payload_bytes));
  std::printf("  bytes/op:     %.2f\n", info.bytes_per_op);
}

struct ReadSynth {
  uint64_t percent = 0;  // 0 = off
  bool size_queries = false;
  uint64_t seed = 42;
};

/// Pop the read-synthesis knobs shared by convert and recompress.
ReadSynth read_synth_flags(std::vector<std::string>& args) {
  ReadSynth rs;
  value_flag(args, "--reads", &rs.percent);
  rs.size_queries = flag(args, "--size-queries");
  value_flag(args, "--seed", &rs.seed);
  return rs;
}

io::Trace apply_read_synth(io::Trace t, const ReadSynth& rs) {
  if (rs.percent == 0) return t;
  return io::synthesize_reads(t, static_cast<int>(rs.percent),
                              rs.size_queries, rs.seed);
}

void save(const io::Trace& t, const std::string& path, bool v1) {
  io::save_trace_file(t, path,
                      v1 ? io::TraceFormat::kV1 : io::preferred_format(t));
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  while (cmd.size() >= 2 && cmd[0] == '-') cmd.erase(0, 1);  // --info == info
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "info") {
    if (args.size() != 1) return usage();
    print_info(args[0]);
    return 0;
  }

  if (cmd == "recompress") {
    const bool v1 = flag(args, "--v1");
    const ReadSynth rs = read_synth_flags(args);
    if (args.size() != 2) return usage();
    const io::Trace t =
        apply_read_synth(io::load_trace_file(args[0]), rs);
    save(t, args[1], v1);
    std::printf("recompressed %zu ops: %s -> %s\n", t.ops.size(),
                args[0].c_str(), args[1].c_str());
    print_info(args[1]);
    return 0;
  }

  if (cmd == "snapshot") {
    if (args.empty() || args.size() > 2) return usage();
    const io::Snapshot s = io::load_snapshot_file(args[0]);
    std::printf("snapshot: %s\n", args[0].c_str());
    std::printf("  applied_seq:  %llu\n",
                static_cast<unsigned long long>(s.applied_seq));
    std::printf("  vertices:     %u\n", s.edges.num_vertices);
    std::printf("  live edges:   %zu\n", s.edges.ops.size());
    if (args.size() == 2) {
      io::save_trace_file(s.edges, args[1], io::preferred_format(s.edges));
      std::printf("extracted live-edge trace -> %s\n", args[1].c_str());
      print_info(args[1]);
    }
    return 0;
  }

  if (cmd == "convert") {
    io::ConvertOptions opts;
    const bool v1 = flag(args, "--v1");
    opts.dedup = flag(args, "--dedup");
    uint64_t window = 0, queries = 0;
    value_flag(args, "--window", &window);
    value_flag(args, "--queries", &queries);
    const ReadSynth rs = read_synth_flags(args);
    opts.seed = rs.seed;  // one --seed drives probes and read synthesis
    opts.window = static_cast<std::size_t>(window);
    opts.query_every = static_cast<uint32_t>(queries);
    if (args.size() != 2) return usage();
    const auto events = io::load_temporal_snap_file(args[0]);
    if (events.empty())
      throw std::runtime_error(args[0] + " holds no temporal edges");
    const io::Trace t =
        apply_read_synth(io::temporal_to_trace(events, opts), rs);
    save(t, args[1], v1);
    std::printf("converted %zu events -> %zu ops, |V|=%u: %s\n",
                events.size(), t.ops.size(), t.num_vertices, args[1].c_str());
    print_info(args[1]);
    return 0;
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_convert: %s\n", e.what());
    return 1;
  }
}
